// Discrete-event scheduler: a time-ordered queue of typed events with a
// deterministic FIFO tie-break for simultaneous events.
//
// Events are a tagged union (kind + three packed 32-bit payload words), so
// scheduling allocates nothing per event: the queue stores trivially
// copyable 32-byte structs. The owner (PacketSim) pops events and
// dispatches on the kind with a switch; arbitrary user callbacks go
// through a side table owned by the dispatcher (see
// PacketSim::schedule_in), keeping std::function off the per-packet path.
//
// The structure is a calendar queue (Brown 1988): a power-of-two array of
// time buckets of power-of-two width, so schedule() is O(1) (shift, mask,
// append) and pop() scans one short bucket instead of sifting a binary
// heap — the classic O(1) discrete-event core, 2-4x faster than a heap at
// simulator event counts. Events beyond the current calendar year wait in
// an overflow list and are migrated when the year advances; bucket count
// and width adapt to the pending-event density on amortized-O(1)
// rebuilds. Pop order is exactly ascending (time, seq) — the same total
// order a heap yields — because the popped bucket's minimum is the global
// minimum: earlier buckets are empty, later buckets hold strictly later
// times, and overflow events lie beyond the year boundary.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "core/units.hpp"

namespace hxmesh::sim {

/// What a scheduled event means to the dispatcher. The queue itself never
/// interprets the kind — it only orders events.
enum class EventKind : std::uint8_t {
  kLinkFree,      ///< a: upstream NodeId whose out-link finished serializing
  kPacketArrive,  ///< a: packet id, b: LinkId the packet arrived over
  kCreditReturn,  ///< a: LinkId, b: VC, c: bytes credited back upstream
  kUserCallback,  ///< a: slot in the dispatcher's callback side table
};

/// One scheduled event: time + FIFO sequence + tagged payload. Trivially
/// copyable by design — the queue moves raw structs, never closures.
struct Event {
  picoseconds time = 0;
  std::uint64_t seq = 0;
  EventKind kind = EventKind::kUserCallback;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint32_t c = 0;

  // (time, seq) as one 128-bit key: the lexicographic compare becomes a
  // single branchless cmp/sbb instead of a 50%-mispredicted time branch.
  unsigned __int128 key() const {
    return (static_cast<unsigned __int128>(time) << 64) | seq;
  }
  bool operator<(const Event& o) const { return key() < o.key(); }
  bool operator>(const Event& o) const { return o < *this; }
};

static_assert(std::is_trivially_copyable_v<Event>);

class EventQueue {
 public:
  /// Schedules an event at absolute time `when` (must be >= now()).
  void schedule(picoseconds when, EventKind kind, std::uint32_t a = 0,
                std::uint32_t b = 0, std::uint32_t c = 0) {
    assert(when >= now_ && "schedule: event in the past");
    push(Event{when, seq_++, kind, a, b, c});
  }

  /// Schedules an event `delay` after the current time.
  void schedule_in(picoseconds delay, EventKind kind, std::uint32_t a = 0,
                   std::uint32_t b = 0, std::uint32_t c = 0) {
    schedule(now_ + delay, kind, a, b, c);
  }

  picoseconds now() const { return now_; }
  bool empty() const { return size_ == 0; }
  std::uint64_t events_processed() const { return processed_; }

  /// Removes and returns the earliest (time, then FIFO seq) event,
  /// advancing now() to its time. Calling pop() on an empty queue is
  /// undefined (check empty() first).
  Event pop() {
    assert(size_ > 0 && "pop: empty queue");
    for (;;) {
      const std::size_t nbuckets = mask_ + 1;
      while (cur_ < nbuckets) {
        // Dense occupancy counts make the empty-bucket walk scan 16
        // slots per cache line instead of one vector header each.
        if (occupancy_[cur_] == 0) {
          ++cur_;
          continue;
        }
        std::vector<Event>& b = buckets_[cur_];
        // All entries of this bucket precede every other pending event,
        // so its (time, seq) minimum is the global minimum.
        std::size_t best = 0;
        for (std::size_t i = 1; i < b.size(); ++i)
          if (b[i] < b[best]) best = i;
        Event e = b[best];
        b[best] = b.back();
        b.pop_back();
        --occupancy_[cur_];
        --size_;
        now_ = e.time;
        ++processed_;
        if (size_ < nbuckets / 4 && nbuckets > kMinBuckets)
          rebuild(nbuckets / 2);
        return e;
      }
      // Calendar year exhausted: advance it (jumping over empty years
      // straight to the earliest overflow event) and migrate overflow
      // events that now fall inside the year.
      year_start_ += year_;
      cur_ = 0;
      if (size_ == far_.size()) {
        assert(!far_.empty() && "pop: pending events lost");
        picoseconds mn = far_.front().time;
        for (const Event& e : far_) mn = mn < e.time ? mn : e.time;
        if (mn - year_start_ >= year_) year_start_ = mn / year_ * year_;
      }
      migrate_far();
    }
  }

 private:
  static constexpr std::size_t kMinBuckets = 16;

  static int log2_ceil(std::uint64_t v) {
    int l = 0;
    while ((std::uint64_t{1} << l) < v) ++l;
    return l;
  }

  std::size_t slot_of(picoseconds t) const {
    // year_start_ is a multiple of year_, so masking the global bucket
    // number yields the in-year slot directly.
    return static_cast<std::size_t>(t >> width_log2_) & mask_;
  }

  void push(const Event& e) {
    if (buckets_.empty()) rebuild(kMinBuckets, e.time);
    if (e.time - year_start_ >= year_) {
      far_.push_back(e);
    } else {
      const std::size_t slot = slot_of(e.time);
      buckets_[slot].push_back(e);
      ++occupancy_[slot];
    }
    ++size_;
    if (size_ > 2 * (mask_ + 1)) rebuild(2 * (mask_ + 1));
  }

  /// Re-buckets every pending event into `nbuckets` buckets whose width
  /// tracks the current pending-time distribution (amortized O(1) per
  /// event: the queue grows or shrinks by a constant factor between
  /// rebuilds). `time_hint` seeds the width when nothing is pending yet
  /// (the lazy init from the first push).
  void rebuild(std::size_t nbuckets, picoseconds time_hint = 0) {
    scratch_.clear();
    scratch_.reserve(size_);
    for (std::vector<Event>& b : buckets_) {
      scratch_.insert(scratch_.end(), b.begin(), b.end());
      b.clear();
    }
    scratch_.insert(scratch_.end(), far_.begin(), far_.end());
    far_.clear();

    buckets_.resize(nbuckets);
    occupancy_.assign(nbuckets, 0);
    mask_ = nbuckets - 1;
    // Size the window from the MEDIAN pending offset, recomputed from
    // what is actually pending (2x the median equals the full span for a
    // uniform distribution). A robust estimator matters: sizing from the
    // maximum — or even the mean — lets a lone far-future event (a long
    // compute phase among dense packet events) dictate the bucket width,
    // piling every near-term event into one bucket and making pop() scan
    // linearly until the stray event fires. Outliers beyond the median-
    // sized year simply wait in the overflow list instead.
    std::uint64_t median_off;
    if (scratch_.empty()) {
      median_off = time_hint > now_ ? time_hint - now_ : 1;
    } else {
      auto mid = scratch_.begin() +
                 static_cast<std::ptrdiff_t>(scratch_.size() / 2);
      std::nth_element(scratch_.begin(), mid, scratch_.end(),
                       [](const Event& x, const Event& y) {
                         return x.time < y.time;
                       });
      median_off = mid->time - now_;
    }
    const std::uint64_t span = std::max<std::uint64_t>(2 * median_off, 1);
    // Year = nbuckets * width >= 2 * span: the live window fills at most
    // half the calendar (cheap wraps) while buckets stay short — the
    // grow threshold keeps average occupancy near two events per bucket.
    width_log2_ = log2_ceil(std::max<std::uint64_t>(
        (2 * span + nbuckets - 1) / nbuckets, 1));
    year_ = static_cast<std::uint64_t>(nbuckets) << width_log2_;
    year_start_ = now_ / year_ * year_;
    cur_ = slot_of(now_);
    for (const Event& e : scratch_) {
      if (e.time - year_start_ >= year_) {
        far_.push_back(e);
      } else {
        const std::size_t slot = slot_of(e.time);
        buckets_[slot].push_back(e);
        ++occupancy_[slot];
      }
    }
  }

  void migrate_far() {
    std::size_t keep = 0;
    for (std::size_t i = 0; i < far_.size(); ++i) {
      if (far_[i].time - year_start_ < year_) {
        const std::size_t slot = slot_of(far_[i].time);
        buckets_[slot].push_back(far_[i]);
        ++occupancy_[slot];
      } else {
        far_[keep++] = far_[i];
      }
    }
    far_.resize(keep);
  }

  std::vector<std::vector<Event>> buckets_;
  std::vector<std::uint32_t> occupancy_;  // per-bucket event counts
  std::vector<Event> far_;      // events beyond the current calendar year
  std::vector<Event> scratch_;  // rebuild staging, reused across rebuilds
  std::size_t size_ = 0;
  std::size_t mask_ = 0;        // bucket count - 1 (power of two)
  int width_log2_ = 0;          // log2 of bucket width in picoseconds
  std::uint64_t year_ = 0;      // bucket count * width
  std::size_t cur_ = 0;         // current in-year slot
  picoseconds year_start_ = 0;  // multiple of year_
  picoseconds now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace hxmesh::sim
