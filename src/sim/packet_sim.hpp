// Packet-level network simulator (the SST substitute, Appendix F).
//
// Model: virtual cut-through at packet granularity. Every directed link is
// a serialization server (one packet at a time, bytes/bandwidth); switches
// are input-buffered with per-(input link, VC) FIFO queues, credit-based
// flow control toward the upstream sender, and round-robin arbitration.
// Routing is adaptive minimal: at every node the candidate next hops are
// the links that strictly decrease the BFS hop distance to the
// destination, and the least-loaded candidate with credit wins. Packets
// move to a higher virtual channel whenever they are injected from an
// accelerator into a switch (board -> rail in HammingMesh), which caps at
// three VCs exactly as Section IV-C3 prescribes.
//
// Hot-path design: the event queue carries typed tagged-union events
// (nothing heap-allocates per packet), routing decisions walk precomputed
// per-destination next-hop candidate tables instead of filtering all
// out-links through a distance field, and the per-link VC escalation rule
// is a flat bool array. All of it is observationally identical to the
// straightforward implementation — same event order, same tie-breaks,
// same delivered-byte sequence — only faster.
//
// Messages are sequences of packets; the caller gets a callback when the
// last byte of a message arrives. Payload bytes are not simulated — timing
// is bandwidth/latency-accurate, contents travel with the message object
// (see MiniMpi).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "core/rng.hpp"
#include "sim/event_queue.hpp"
#include "topo/topology.hpp"

namespace hxmesh::sim {

struct PacketSimConfig {
  std::uint64_t packet_bytes = kPacketBytes;      // 8 KiB (Appendix F)
  std::uint64_t buffer_bytes_per_vc = 32 * MiB;   // per input port (App. F)
  int num_vcs = 3;
  picoseconds switch_latency_ps = kBufferLatencyPs;  // in/out buffer, 40 ns
  // Non-minimal routing: Valiant detours every packet through a random
  // intermediate endpoint; UGAL-L compares queue-depth x distance of the
  // minimal and detour injection ports per packet. Both run the two legs
  // in disjoint VC halves (2 * num_vcs channels per link; the leg-2 range
  // is what keeps the scheme deadlock-free, see routing/deadlock.hpp).
  topo::RouteMode route_mode = topo::RouteMode::kMinimal;
  std::uint64_t route_seed = 1;  // intermediate-endpoint draws
};

/// Statistics exposed after (or during) a run.
struct PacketSimStats {
  std::uint64_t packets_delivered = 0;
  std::uint64_t packet_hops = 0;
  std::uint64_t messages_delivered = 0;
  double sum_packet_latency_s = 0.0;

  double avg_packet_latency_s() const {
    return packets_delivered ? sum_packet_latency_s / packets_delivered : 0.0;
  }
  double avg_hops() const {
    return packets_delivered
               ? static_cast<double>(packet_hops) / packets_delivered
               : 0.0;
  }
};

class PacketSim {
 public:
  explicit PacketSim(const topo::Topology& topology,
                     PacketSimConfig config = {});

  /// Queues a message of `bytes` from accelerator `src` to `dst`;
  /// `on_delivered` fires (at simulated delivery time) when the last packet
  /// arrives. Messages from a src are injected in FIFO order.
  void send_message(int src, int dst, std::uint64_t bytes,
                    std::function<void()> on_delivered);

  /// Builds the per-destination route tables of `dst_ranks` up front,
  /// fanned over a thread pool when there are enough of them to matter.
  /// Purely a warm-up: each table is a deterministic function of the
  /// topology, so prebuilding (with any worker count) leaves the
  /// simulation bit-identical to lazy construction. Call it before the
  /// first send_message to the listed destinations — injection builds a
  /// destination's table on first use otherwise.
  void prebuild_routes(const std::vector<int>& dst_ranks);

  /// Schedules `fn` at simulated time `now + delay` (for compute phases).
  /// User callbacks live in a side table; the event itself carries only the
  /// slot index, so the typed event core stays allocation-free.
  void schedule_in(picoseconds delay, std::function<void()> fn);

  /// Runs until the event queue drains, dispatching typed events. Returns
  /// the finish time. If messages remain undelivered afterwards the
  /// network is deadlocked (query unfinished_messages()).
  picoseconds run();

  picoseconds now() const { return events_.now(); }
  const PacketSimStats& stats() const { return stats_; }
  int unfinished_messages() const { return unfinished_; }
  const topo::Topology& topology() const { return topology_; }

  /// Total bytes that crossed each link (for utilization studies).
  const std::vector<std::uint64_t>& link_bytes() const { return link_bytes_; }

 private:
  struct Message {
    int src, dst;
    std::uint64_t bytes;
    std::uint64_t bytes_delivered = 0;
    std::uint64_t packets_total = 0, packets_injected = 0;
    std::function<void()> on_delivered;
  };
  struct Packet {
    std::uint32_t message;
    std::uint32_t bytes;
    topo::NodeId dst_node;
    // Valiant intermediate endpoint: the packet routes toward via_node in
    // leg-1 VCs until it arrives there, then toward dst_node in leg-2 VCs.
    topo::NodeId via_node = topo::kInvalidNode;
    std::uint8_t vc;
    std::uint8_t phase = 0;  // 0 = leg 1 (or minimal), 1 = leg 2
    std::uint8_t hops = 0;
    picoseconds injected_at = 0;
  };
  // One per-(input link, VC) FIFO at the downstream node of each link.
  struct InputBuffer {
    std::deque<std::uint32_t> queue;  // packet ids
  };
  // Routing table toward one destination: the minimal next-hop links of
  // every node, flattened CSR-style. Candidate order matches the graph's
  // out-link order, so adaptive tie-breaks are identical to filtering the
  // out-links through the BFS field on every decision.
  struct RouteTable {
    topo::Topology::DistField dist;  // pinned: keeps the field alive
    std::vector<std::uint32_t> offset;  // per node, into links
    std::vector<topo::LinkId> links;
  };

  void try_inject(int src);
  void try_forward(topo::NodeId node);
  // Typed-event handlers (dispatched from run()).
  void on_link_free(topo::NodeId src_node);
  void on_packet_arrive(std::uint32_t packet_id, topo::LinkId link);
  void on_credit_return(topo::LinkId link, int vc, std::uint32_t bytes);
  void on_user_callback(std::uint32_t slot);

  // Topology::dist_field is shared across engine threads and pays for a
  // lock per call; this sim is single-threaded, so it pins each handed-out
  // field in a flat vector indexed by destination node and derives the
  // per-node candidate-link table from it once, lock-free thereafter.
  const RouteTable& route_to(topo::NodeId dst_node);
  std::unique_ptr<RouteTable> build_route_table(topo::NodeId dst_node) const;
  void start_transmission(std::uint32_t packet_id, topo::LinkId link);
  // Phase-aware VC escalation: each leg escalates within its own
  // num_vcs-wide range; the leg-1 -> leg-2 hand-off at the intermediate
  // endpoint re-enters at the leg-2 injection VC. Minimal mode has a
  // single range (total_vcs_ == num_vcs) and reduces to the original rule.
  int vc_after(const Packet& p, topo::LinkId link) const {
    const int base = p.phase ? config_.num_vcs : 0;
    int v = p.vc;
    if (v < base)
      return base + (vc_bump_[link] ? std::min(1, config_.num_vcs - 1) : 0);
    return vc_bump_[link] ? std::min<int>(v + 1, base + config_.num_vcs - 1)
                          : v;
  }
  std::uint64_t& credits(topo::LinkId link, int vc) {
    return credits_[static_cast<std::size_t>(link) * total_vcs_ + vc];
  }
  // Valiant draw: a uniform intermediate endpoint distinct from both ends.
  topo::NodeId draw_via(int src, int dst);
  // UGAL-L: via_node to detour through, kInvalidNode to go minimal.
  topo::NodeId ugal_choice(topo::NodeId node, topo::NodeId dst_node,
                           topo::NodeId via_node, std::uint32_t pkt_bytes);

  const topo::Topology& topology_;
  PacketSimConfig config_;
  // Channel count per link: num_vcs for minimal routing, 2 * num_vcs for
  // the two-phase non-minimal modes. All per-(link, vc) state below is
  // strided by this.
  int total_vcs_;
  Rng route_rng_;  // intermediate-endpoint draws (Valiant/UGAL)
  EventQueue events_;
  PacketSimStats stats_;
  // Per-destination routing tables, indexed by destination node (lazy).
  std::vector<std::unique_ptr<RouteTable>> routes_;
  // Per-link: does traversing this link escalate the VC (endpoint ->
  // switch injection, Section IV-C3)?
  std::vector<std::uint8_t> vc_bump_;

  std::vector<Message> messages_;
  std::vector<Packet> packets_;
  std::vector<std::uint32_t> free_packets_;

  // User callbacks (send_message completion is per message, not per
  // event): slot-indexed side table with free-list reuse.
  std::vector<std::function<void()>> callbacks_;
  std::vector<std::uint32_t> free_callbacks_;

  std::vector<picoseconds> link_busy_until_;
  std::vector<std::uint64_t> credits_;  // [link][vc], bytes available
  std::vector<std::uint64_t> link_bytes_;
  // Input buffers indexed by link (the buffer sits at link.dst), per VC.
  std::vector<InputBuffer> input_;
  // Per-node round-robin cursor over (in-link, vc) pairs.
  std::vector<std::uint32_t> rr_;
  // In-links per node (cached from the graph).
  std::vector<std::vector<topo::LinkId>> in_links_;
  // Injection queues: per endpoint, messages waiting to emit packets.
  std::vector<std::deque<std::uint32_t>> inject_queue_;
  int unfinished_ = 0;
};

}  // namespace hxmesh::sim
