// Quickstart: build a small HammingMesh, look at its structure and price,
// then run a real allreduce over two edge-disjoint Hamiltonian rings on
// the packet-level simulator and verify the numerical result.
//
//   $ ./quickstart
#include <cstdio>
#include <numeric>

#include "collectives/hamiltonian.hpp"
#include "collectives/runtime.hpp"
#include "cost/cost_model.hpp"
#include "sim/minimpi.hpp"
#include "topo/hammingmesh.hpp"

using namespace hxmesh;

int main() {
  // A 4x4 grid of 2x2 boards = 64 accelerators, one plane modeled.
  topo::HammingMesh hx({.a = 2, .b = 2, .x = 4, .y = 4});
  std::printf("topology : %s (%d accelerators, %d rail switches/plane)\n",
              hx.name().c_str(), hx.num_endpoints(), hx.num_switches());
  std::printf("diameter : %d cables\n", hx.diameter());

  cost::Bom bom = cost::hxmesh_bom(hx);
  std::printf("price    : $%.0f (%lld switches, %lld DAC, %lld AoC)\n",
              bom.total_usd(), bom.switches, bom.dac_cables, bom.aoc_cables);

  // Map the two edge-disjoint Hamiltonian cycles onto the accelerator grid.
  auto rings = collectives::disjoint_hamiltonian_rings(hx.accel_y(),
                                                       hx.accel_x());
  std::vector<int> red, green;
  for (auto [row, col] : rings.red) red.push_back(hx.rank_at(col, row));
  for (auto [row, col] : rings.green) green.push_back(hx.rank_at(col, row));

  // Each rank contributes a vector; allreduce sums them all.
  const int elems = 64 * 1024;  // 256 KiB per rank
  std::vector<std::vector<float>> data(hx.num_endpoints(),
                                       std::vector<float>(elems, 1.0f));
  sim::MiniMpi mpi(hx);
  picoseconds t = collectives::run_allreduce_two_rings(mpi, red, green, data);

  bool correct = true;
  for (float v : data[0]) correct &= v == static_cast<float>(64);
  double seconds = ps_to_s(t);
  double algo_bw = elems * sizeof(float) / seconds;
  std::printf("allreduce: %d ranks x %zu KiB in %.2f us -> %.1f GB/s "
              "(peak %.1f GB/s), result %s\n",
              hx.num_endpoints(), elems * sizeof(float) / 1024, seconds * 1e6,
              algo_bw / 1e9, hx.injection_bandwidth() / 2 / 1e9,
              correct ? "correct" : "WRONG");
  return correct ? 0 : 1;
}
