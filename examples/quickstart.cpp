// Quickstart: build a small HammingMesh from a spec string, look at its
// structure and price, then run a real allreduce over two edge-disjoint
// Hamiltonian rings on the packet-level engine — completion time comes
// from the simulator and the float payloads are verified numerically.
//
//   $ ./quickstart
#include <cstdio>

#include "cost/cost_model.hpp"
#include "engine/factory.hpp"
#include "topo/hammingmesh.hpp"

using namespace hxmesh;

int main() {
  // A 4x4 grid of 2x2 boards = 64 accelerators, one plane modeled.
  auto t = engine::make_topology("hx2mesh:4x4");
  auto& hx = dynamic_cast<const topo::HammingMesh&>(*t);
  std::printf("topology : %s (%d accelerators, %d rail switches/plane)\n",
              hx.name().c_str(), hx.num_endpoints(), hx.num_switches());
  std::printf("diameter : %d cables\n", hx.diameter());

  cost::Bom bom = cost::hxmesh_bom(hx);
  std::printf("price    : $%.0f (%lld switches, %lld DAC, %lld AoC)\n",
              bom.total_usd(), bom.switches, bom.dac_cables, bom.aoc_cables);

  // The packet engine maps the allreduce onto the two edge-disjoint
  // Hamiltonian cycles of the accelerator grid (Appendix D) and verifies
  // the reduced floats.
  auto eng = engine::make_engine("packet", *t);
  flow::TrafficSpec spec;
  spec.kind = flow::PatternKind::kAllreduce;
  spec.message_bytes = 256 * KiB;  // per rank
  engine::RunResult result = eng->run(spec);

  double algo_bw = static_cast<double>(spec.message_bytes) /
                   result.completion_s;
  std::printf("allreduce: %d ranks x %llu KiB in %.2f us -> %.1f GB/s "
              "(peak %.1f GB/s, %.0f%% of peak), result %s\n",
              hx.num_endpoints(),
              static_cast<unsigned long long>(spec.message_bytes / KiB),
              result.completion_s * 1e6, algo_bw / 1e9,
              hx.injection_bandwidth() / 2 / 1e9,
              result.fraction_of_peak * 100,
              result.numerics_ok ? "correct" : "WRONG");
  return result.numerics_ok ? 0 : 1;
}
