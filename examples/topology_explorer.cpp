// Topology explorer: sweep the HammingMesh design space (board size and
// rail tapering — the two "dials" of Sections III and III-F) at a fixed
// accelerator count and print the cost / bandwidth trade-off frontier.
//
//   $ ./topology_explorer
#include <cstdio>
#include <memory>

#include "collectives/models.hpp"
#include "cost/cost_model.hpp"
#include "flow/patterns.hpp"
#include "topo/hammingmesh.hpp"

using namespace hxmesh;

namespace {

double alltoall_fraction(const topo::Topology& t) {
  flow::FlowSolver solver(t);
  const int n = t.num_endpoints();
  double total = 0;
  int count = 0;
  for (int s = 1; s < n; s += (n - 1) / 16) {
    auto flows = flow::shift_pattern(n, s);
    solver.solve(flows);
    for (const auto& f : flows) total += f.rate;
    count += n;
  }
  return total / count / t.injection_bandwidth();
}

}  // namespace

int main() {
  std::printf("HammingMesh design space at 4,096 accelerators\n");
  std::printf("%-22s %10s %12s %12s %10s\n", "configuration", "cost[M$]",
              "global BW", "allreduce", "diameter");
  struct Config {
    int a, b, x, y;
    double taper;
  };
  const Config configs[] = {
      {1, 1, 64, 64, 1.0}, {2, 2, 32, 32, 1.0}, {2, 2, 32, 32, 0.5},
      {4, 4, 16, 16, 1.0}, {8, 8, 8, 8, 1.0},   {4, 2, 16, 32, 1.0},
  };
  for (const Config& c : configs) {
    topo::HammingMesh hx(
        {.a = c.a, .b = c.b, .x = c.x, .y = c.y, .rail_taper = c.taper});
    double cost = cost::hxmesh_bom(hx).total_musd();
    double glob = alltoall_fraction(hx);
    auto ring = collectives::measure_ring(hx);
    double ared = collectives::allreduce_fraction_of_peak(ring, 4.0 * GiB);
    char name[64];
    std::snprintf(name, sizeof(name), "%s taper=%.0f%%", hx.name().c_str(),
                  c.taper * 100);
    std::printf("%-22s %10.1f %11.1f%% %11.1f%% %10d\n", name, cost,
                glob * 100, ared * 100, hx.diameter_formula());
    std::fflush(stdout);
  }
  std::printf("\nBigger boards and tapered rails trade global bandwidth "
              "for cost; allreduce stays near peak everywhere —\nthe "
              "HammingMesh thesis in one table.\n");
  return 0;
}
