// Topology explorer: sweep the HammingMesh design space (board size and
// rail tapering — the two "dials" of Sections III and III-F) at a fixed
// accelerator count and print the cost / bandwidth trade-off frontier.
// The whole sweep is one harness grid: every configuration is a factory
// spec string, every metric a flow-engine TrafficSpec.
//
//   $ ./topology_explorer
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "cost/cost_model.hpp"
#include "engine/harness.hpp"

using namespace hxmesh;

int main() {
  std::printf("HammingMesh design space at 4,096 accelerators\n");
  std::printf("%-22s %10s %12s %12s %10s\n", "configuration", "cost[M$]",
              "global BW", "allreduce", "diameter");

  engine::SweepConfig sweep;
  sweep.topologies = {
      "hxmesh:1x1:64x64", "hxmesh:2x2:32x32", "hxmesh:2x2:32x32:taper=0.5",
      "hxmesh:4x4:16x16", "hxmesh:8x8:8x8",   "hxmesh:4x2:16x32",
  };
  sweep.engines = {"flow"};
  flow::TrafficSpec alltoall;
  alltoall.kind = flow::PatternKind::kAlltoall;
  alltoall.samples = 16;
  flow::TrafficSpec allreduce;
  allreduce.kind = flow::PatternKind::kAllreduce;
  allreduce.message_bytes = 4 * GiB;
  sweep.patterns = {alltoall, allreduce};

  engine::ExperimentHarness harness;
  // Honor the bench-wide cache convention: $HXMESH_CACHE_DIR makes design
  // space re-exploration incremental.
  auto cache = engine::ResultCache::from_env();
  auto rows = harness.run_grid(sweep, {}, cache.get());

  struct Extra {
    std::string name;
    double cost_musd;
    int diameter;
  };
  auto extras = harness.map<Extra>(sweep.topologies.size(), [&](std::size_t i) {
    auto t = engine::make_topology(sweep.topologies[i]);
    return Extra{t->name(), cost::bom_for(*t).total_musd(),
                 t->diameter_formula()};
  });

  for (std::size_t i = 0; i < sweep.topologies.size(); ++i) {
    double glob = rows[2 * i + 0].result.aggregate_fraction;
    double ared = rows[2 * i + 1].result.fraction_of_peak;
    bool tapered =
        sweep.topologies[i].find("taper") != std::string::npos;
    char name[64];
    std::snprintf(name, sizeof(name), "%s taper=%d%%", extras[i].name.c_str(),
                  tapered ? 50 : 100);
    std::printf("%-22s %10.1f %11.1f%% %11.1f%% %10d\n", name,
                extras[i].cost_musd, glob * 100, ared * 100,
                extras[i].diameter);
  }
  std::printf("\nBigger boards and tapered rails trade global bandwidth "
              "for cost; allreduce stays near peak everywhere —\nthe "
              "HammingMesh thesis in one table.\n");
  engine::write_json("BENCH_topology_explorer.json", rows);
  return 0;
}
