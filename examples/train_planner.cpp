// Train planner: estimate per-iteration times of the paper's five DNN
// workloads on each candidate network of the small cluster, and rank the
// networks by cost-effectiveness for a chosen model (the Figure 15
// question asked as a procurement decision). Candidate evaluations fan
// across the harness pool.
//
//   $ ./train_planner            # plans for GPT-3
//   $ ./train_planner ResNet-152
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "cost/cost_model.hpp"
#include "engine/harness.hpp"
#include "topo/zoo.hpp"
#include "workload/dnn.hpp"

using namespace hxmesh;

int main(int argc, char** argv) {
  std::string target = argc > 1 ? argv[1] : "GPT-3";
  struct Option {
    std::string name;
    double cost_musd = 0;
    double iteration_ms = 0;
    double overhead_ms = 0;
    bool found = false;
  };

  auto list = topo::paper_topology_list();
  engine::ExperimentHarness harness;
  auto options = harness.map<Option>(list.size(), [&](std::size_t i) {
    auto t = engine::make_topology(
        engine::paper_topology_spec(list[i], topo::ClusterSize::kSmall));
    Option o;
    o.name = topo::paper_topology_label(list[i]);
    o.cost_musd = cost::bom_for(*t).total_musd();
    workload::CommEnv env(*t);
    for (const auto& r : workload::eval_all_models(env))
      if (r.model == target) {
        o.iteration_ms = r.iteration_ms;
        o.overhead_ms = r.overhead_ms();
        o.found = true;
      }
    return o;
  });
  options.erase(std::remove_if(options.begin(), options.end(),
                               [](const Option& o) { return !o.found; }),
                options.end());
  if (options.empty()) {
    std::printf("unknown model '%s' (try: ResNet-152, GPT-3, GPT-3 MoE, "
                "CosmoFlow, DLRM)\n",
                target.c_str());
    return 1;
  }

  // Rank by cost per unit of training throughput (1/iteration time).
  std::sort(options.begin(), options.end(), [](const auto& a, const auto& b) {
    return a.cost_musd * a.iteration_ms < b.cost_musd * b.iteration_ms;
  });
  std::printf("Training plan for %s on ~1,024 accelerators\n", target.c_str());
  std::printf("%-14s %10s %14s %14s %18s\n", "network", "cost[M$]",
              "iteration[ms]", "exposed[ms]", "cost*time (rank)");
  for (const auto& o : options)
    std::printf("%-14s %10.1f %14.2f %14.2f %18.1f\n", o.name.c_str(),
                o.cost_musd, o.iteration_ms, o.overhead_ms,
                o.cost_musd * o.iteration_ms);
  std::printf("\nBest value: %s\n", options.front().name.c_str());
  return 0;
}
