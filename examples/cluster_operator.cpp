// Cluster operator: a day in the life of a 16x16 Hx2Mesh cluster. Jobs
// arrive and depart, boards fail at random, and the greedy allocator with
// all heuristics keeps packing virtual sub-HxMeshes around the holes
// (Section IV). Prints a utilization timeline and the final board map.
//
//   $ ./cluster_operator
#include <cstdio>
#include <deque>
#include <vector>

#include "alloc/allocator.hpp"
#include "alloc/jobs.hpp"

using namespace hxmesh;

int main() {
  const int x = 16, y = 16;
  alloc::Allocator cluster(
      x, y, alloc::AllocatorOptions{.transpose = true, .aspect_ratio = true,
                                    .locality = true});
  alloc::JobSizeDistribution dist(64);
  Rng rng(2026);

  struct Running {
    alloc::Placement placement;
    int ends_at;
  };
  std::deque<Running> running;
  int next_job = 0, rejected = 0, completed = 0;

  std::printf("tick  arrivals  departures  failed  allocated  utilization\n");
  for (int tick = 0; tick < 40; ++tick) {
    // Departures.
    int departures = 0;
    for (std::size_t i = 0; i < running.size();) {
      if (running[i].ends_at <= tick) {
        cluster.release(running[i].placement);
        running.erase(running.begin() + static_cast<long>(i));
        ++departures;
        ++completed;
      } else {
        ++i;
      }
    }
    // Occasional board failure (~every 8 ticks).
    if (rng.uniform(8) == 0) cluster.fail_random_boards(1, rng);
    // Arrivals: 1-3 jobs per tick with heavy-tailed sizes.
    int arrivals = 1 + static_cast<int>(rng.uniform(3));
    for (int a = 0; a < arrivals; ++a) {
      int boards = dist.sample(rng);
      auto p = cluster.allocate(next_job++, boards, rng);
      if (p)
        running.push_back({*p, tick + 3 + static_cast<int>(rng.uniform(12))});
      else
        ++rejected;
    }
    std::printf("%4d  %8d  %10d  %6d  %9d  %10.1f%%\n", tick, arrivals,
                departures, cluster.boards_total() - cluster.boards_alive(),
                cluster.boards_allocated(), cluster.utilization() * 100);
  }

  std::printf("\ncompleted=%d running=%zu rejected=%d\n", completed,
              running.size(), rejected);
  // Board map: letters = jobs, '.' = free, 'X' = failed.
  std::vector<std::string> map(y, std::string(x, '.'));
  for (const auto& r : running)
    for (int by : r.placement.rows)
      for (int bx : r.placement.cols)
        map[by][bx] = static_cast<char>('a' + r.placement.job_id % 26);
  std::printf("\nboard map (letters = jobs, '.' = free):\n");
  for (const auto& row : map) std::printf("  %s\n", row.c_str());
  return 0;
}
