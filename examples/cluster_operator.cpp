// Cluster operator: a day in the life of a 16x16 Hx2Mesh cluster. Jobs
// arrive and depart, boards fail at random, and the greedy allocator with
// all heuristics keeps packing virtual sub-HxMeshes around the holes
// (Section IV). Prints a utilization timeline, the final board map, and a
// network health check: each surviving job's ring traffic measured on the
// flow engine of the real topology.
//
//   $ ./cluster_operator
#include <cstdio>
#include <deque>
#include <vector>

#include "alloc/allocator.hpp"
#include "alloc/jobs.hpp"
#include "engine/factory.hpp"
#include "topo/hammingmesh.hpp"

using namespace hxmesh;

int main() {
  const int x = 16, y = 16;
  alloc::Allocator cluster(
      x, y, alloc::AllocatorOptions{.transpose = true, .aspect_ratio = true,
                                    .locality = true});
  alloc::JobSizeDistribution dist(64);
  Rng rng(2026);

  struct Running {
    alloc::Placement placement;
    int ends_at;
  };
  std::deque<Running> running;
  int next_job = 0, rejected = 0, completed = 0;

  std::printf("tick  arrivals  departures  failed  allocated  utilization\n");
  for (int tick = 0; tick < 40; ++tick) {
    // Departures.
    int departures = 0;
    for (std::size_t i = 0; i < running.size();) {
      if (running[i].ends_at <= tick) {
        cluster.release(running[i].placement);
        running.erase(running.begin() + static_cast<long>(i));
        ++departures;
        ++completed;
      } else {
        ++i;
      }
    }
    // Occasional board failure (~every 8 ticks).
    if (rng.uniform(8) == 0) cluster.fail_random_boards(1, rng);
    // Arrivals: 1-3 jobs per tick with heavy-tailed sizes.
    int arrivals = 1 + static_cast<int>(rng.uniform(3));
    for (int a = 0; a < arrivals; ++a) {
      int boards = dist.sample(rng);
      auto p = cluster.allocate(next_job++, boards, rng);
      if (p)
        running.push_back({*p, tick + 3 + static_cast<int>(rng.uniform(12))});
      else
        ++rejected;
    }
    std::printf("%4d  %8d  %10d  %6d  %9d  %10.1f%%\n", tick, arrivals,
                departures, cluster.boards_total() - cluster.boards_alive(),
                cluster.boards_allocated(), cluster.utilization() * 100);
  }

  std::printf("\ncompleted=%d running=%zu rejected=%d\n", completed,
              running.size(), rejected);
  // Board map: letters = jobs, '.' = free, 'X' = failed.
  std::vector<std::string> map(y, std::string(x, '.'));
  for (const auto& r : running)
    for (int by : r.placement.rows)
      for (int bx : r.placement.cols)
        map[by][bx] = static_cast<char>('a' + r.placement.job_id % 26);
  std::printf("\nboard map (letters = jobs, '.' = free):\n");
  for (const auto& row : map) std::printf("  %s\n", row.c_str());

  // Health check: sustained ring bandwidth of every surviving job on the
  // physical network, each job's ring solved in isolation.
  auto t = engine::make_topology("hx2mesh:16x16");
  auto& hx = dynamic_cast<const topo::HammingMesh&>(*t);
  auto eng = engine::make_engine("flow", *t);
  std::printf("\nnetwork health (each job's ring, measured alone):\n");
  std::printf("  job  boards  min ring rate [GB/s]\n");
  for (const auto& r : running) {
    // Snake order over the job's boards, then over each board's 2x2 grid.
    flow::TrafficSpec spec;
    spec.kind = flow::PatternKind::kRing;
    for (std::size_t ri = 0; ri < r.placement.rows.size(); ++ri)
      for (std::size_t ci = 0; ci < r.placement.cols.size(); ++ci) {
        int bx = r.placement.cols[ri % 2 == 0
                                      ? ci
                                      : r.placement.cols.size() - 1 - ci];
        int by = r.placement.rows[ri];
        for (int j = 0; j < 2; ++j)
          for (int i = 0; i < 2; ++i)
            spec.ranks.push_back(hx.rank_at(bx * 2 + i, by * 2 + j));
      }
    if (spec.ranks.size() < 2) continue;
    engine::RunResult result = eng->run(spec);
    std::printf("  %c    %6d  %20.1f\n",
                static_cast<char>('a' + r.placement.job_id % 26),
                r.placement.num_boards(), result.rate_summary.min / 1e9);
  }
  return 0;
}
